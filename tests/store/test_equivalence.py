"""Store-backed runs ≡ storeless runs, byte for byte.

The acceptance bar for the artifact store: a cold store, a warm store,
and a store with corrupted (quarantined-on-read) entries must all yield
exactly the output of a storeless sequential run — same `repro study`
markdown, same impact metrics, same causality patterns — at any worker
count.
"""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causality import CausalityAnalysis
from repro.evaluation.study import run_study
from repro.impact import ImpactAnalysis
from repro.pipeline import (
    parallel_causality,
    parallel_impact,
    parallel_study,
    prewarm_store,
)
from repro.report.markdown import study_to_markdown
from repro.sim.workloads.registry import scenario_spec
from repro.store import ArtifactStore
from repro.trace import dump_corpus, iter_corpus_paths

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def corpus_paths(small_corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("store-corpus")
    dump_corpus(small_corpus, directory)
    return iter_corpus_paths(directory)


@pytest.fixture(scope="module")
def baseline_markdown(small_corpus):
    """The storeless sequential study, rendered — the golden bytes."""
    return study_to_markdown(run_study(small_corpus))


def _entry_paths(store):
    return [entry.path for entry in store.entries()]


def _corrupt(path, mode, rng):
    # An earlier corruption in the same example may have emptied the
    # file; size-dependent modes degrade to "empty" instead of asking
    # randrange for an empty range.
    size = os.path.getsize(path)
    if mode == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(rng.randrange(size) if size else 0)
    elif mode == "garbage":
        with open(path, "wb") as handle:
            handle.write(bytes(rng.randrange(256) for _ in range(64)))
    elif mode == "bitflip":
        if size == 0:
            return
        offset = rng.randrange(size)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
    else:  # "empty"
        open(path, "wb").close()


class TestStudyEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_cold_then_warm_then_poisoned(
        self, workers, corpus_paths, baseline_markdown, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")

        cold = parallel_study(corpus_paths, workers=workers, store=store)
        assert study_to_markdown(cold) == baseline_markdown
        assert store.misses == len(corpus_paths)
        assert store.hits == 0

        warm_store = ArtifactStore(tmp_path / "store")
        warm = parallel_study(corpus_paths, workers=workers, store=warm_store)
        assert study_to_markdown(warm) == baseline_markdown
        assert warm_store.hits == len(corpus_paths)
        assert warm_store.misses == 0

        # Poison half the entries: the run must quarantine, recompute
        # and still match byte for byte.
        rng = random.Random(workers)
        victims = _entry_paths(store)[::2]
        for path in victims:
            _corrupt(path, "truncate", rng)
        poisoned_store = ArtifactStore(tmp_path / "store")
        poisoned = parallel_study(
            corpus_paths, workers=workers, store=poisoned_store
        )
        assert study_to_markdown(poisoned) == baseline_markdown
        assert poisoned_store.misses == len(victims)
        assert os.listdir(poisoned_store.quarantine_dir)

        # The recompute healed the store: fully warm again.
        healed_store = ArtifactStore(tmp_path / "store")
        healed = parallel_study(
            corpus_paths, workers=workers, store=healed_store
        )
        assert study_to_markdown(healed) == baseline_markdown
        assert healed_store.hits == len(corpus_paths)

    @settings(max_examples=6, deadline=None)
    @given(
        workers=st.sampled_from(WORKER_COUNTS),
        chunk_size=st.sampled_from([None, 1, 2]),
        seed=st.integers(min_value=0, max_value=2**16),
        modes=st.lists(
            st.sampled_from(["truncate", "garbage", "bitflip", "empty"]),
            min_size=1,
            max_size=4,
        ),
    )
    def test_random_corruption_never_changes_output(
        self,
        workers,
        chunk_size,
        seed,
        modes,
        corpus_paths,
        baseline_markdown,
        tmp_path_factory,
    ):
        tmp_path = tmp_path_factory.mktemp("poison")
        store = ArtifactStore(tmp_path / "store")
        parallel_study(
            corpus_paths, workers=workers, chunk_size=chunk_size, store=store
        )
        rng = random.Random(seed)
        entries = _entry_paths(store)
        for mode in modes:
            _corrupt(rng.choice(entries), mode, rng)
        rerun_store = ArtifactStore(tmp_path / "store")
        rerun = parallel_study(
            corpus_paths,
            workers=workers,
            chunk_size=chunk_size,
            store=rerun_store,
        )
        assert study_to_markdown(rerun) == baseline_markdown
        assert rerun_store.hits + rerun_store.misses == len(corpus_paths)


class TestOtherEntryPoints:
    def test_impact_with_store_matches_sequential(
        self, small_corpus, corpus_paths, tmp_path
    ):
        sequential = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        store = ArtifactStore(tmp_path / "store")
        cold = parallel_impact(corpus_paths, workers=2, store=store)
        warm = parallel_impact(corpus_paths, workers=2, store=store)
        assert cold == sequential
        assert warm == sequential
        assert store.hits == len(corpus_paths)

    def test_causality_with_store_matches_sequential(
        self, small_corpus, corpus_paths, tmp_path
    ):
        name = "WebPageNavigation"
        spec = scenario_spec(name)
        instances = [
            instance
            for stream in small_corpus
            for instance in stream.instances
            if instance.scenario == name
        ]
        sequential = CausalityAnalysis(["*.sys"]).analyze(
            instances, spec.t_fast, spec.t_slow, scenario=name
        )
        store = ArtifactStore(tmp_path / "store")
        for _ in range(2):  # cold, then warm
            parallel = parallel_causality(
                corpus_paths,
                name,
                spec.t_fast,
                spec.t_slow,
                workers=2,
                store=store,
            )
            assert parallel.summary() == sequential.summary()
            assert parallel.patterns == sequential.patterns

    def test_prewarm_makes_study_all_hits(
        self, corpus_paths, baseline_markdown, tmp_path
    ):
        prewarmed = prewarm_store(corpus_paths, tmp_path / "store", workers=2)
        assert prewarmed.misses == len(corpus_paths)
        store = ArtifactStore(tmp_path / "store")
        study = parallel_study(corpus_paths, workers=2, store=store)
        assert study_to_markdown(study) == baseline_markdown
        assert store.hits == len(corpus_paths)
        assert store.misses == 0

    def test_in_memory_sources_compute_without_store_lookups(
        self, small_corpus, baseline_markdown, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        study = parallel_study(list(small_corpus), workers=2, store=store)
        assert study_to_markdown(study) == baseline_markdown
        assert store.session_lookups == 0

    def test_different_fingerprints_do_not_collide(
        self, corpus_paths, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        parallel_study(corpus_paths, workers=1, store=store)
        # Impact uses a different map configuration → its own entries.
        impact_store = ArtifactStore(tmp_path / "store")
        parallel_impact(corpus_paths, workers=1, store=impact_store)
        assert impact_store.misses == len(corpus_paths)
        assert store.stats().distinct_fingerprints == 2
