"""Tests for the injected contention-pathology workloads."""

import statistics

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.sim.workloads.pathology import (
    PATHOLOGY_WORKLOAD_CLASSES,
    DeadlockCycle,
    LockConvoy,
    PriorityInversion,
    WakeupStorm,
)
from repro.sim.workloads.registry import (
    PATHOLOGY_SCENARIO_NAMES,
    SCENARIO_NAMES,
    SCENARIO_SPECS,
    WORKLOADS_BY_NAME,
    workload_class,
)
from repro.trace.events import EventKind

CLASSES = {cls.spec.name: cls for cls in PATHOLOGY_WORKLOAD_CLASSES}


def run_pathology(cls, intensity=0.5, repeats=4, seed=7, scheduler="fifo"):
    config = MachineConfig(seed=seed, cores=8, scheduler=scheduler)
    machine = Machine(f"patho-{cls.spec.name}", config)
    workload = cls(
        repeats=repeats, intensity=intensity, think_median_us=20_000
    )
    workload.install(machine)
    return machine.run_and_trace()


class TestRegistration:
    def test_pathologies_registered_alongside_standard_scenarios(self):
        assert PATHOLOGY_SCENARIO_NAMES == [
            "LockConvoy",
            "PriorityInversion",
            "DeadlockCycle",
            "WakeupStorm",
        ]
        for name in PATHOLOGY_SCENARIO_NAMES:
            assert name in WORKLOADS_BY_NAME
            assert name in SCENARIO_SPECS
            assert workload_class(name) is CLASSES[name]

    def test_standard_scenario_roster_unchanged(self):
        # The default corpus mix must not silently absorb pathologies.
        assert len(SCENARIO_NAMES) == 8
        assert not set(PATHOLOGY_SCENARIO_NAMES) & set(SCENARIO_NAMES)

    def test_every_pathology_declares_ground_truth(self):
        for cls in PATHOLOGY_WORKLOAD_CLASSES:
            assert cls.planted_signatures, cls.spec.name
            assert cls.planted_resources, cls.spec.name
            for signature in cls.planted_signatures:
                assert ".sys!" in signature  # the *.sys filter must match


class TestExecution:
    @pytest.mark.parametrize("cls", PATHOLOGY_WORKLOAD_CLASSES,
                             ids=lambda cls: cls.spec.name)
    def test_runs_deadlock_free_and_emits_instances(self, cls):
        # Unbounded run: every helper loop is bounded, so the heap must
        # drain without DeadlockError.
        stream = run_pathology(cls, repeats=4)
        instances = [
            instance
            for instance in stream.instances
            if instance.scenario == cls.spec.name
        ]
        assert len(instances) == 4
        assert all(instance.duration > 0 for instance in instances)

    @pytest.mark.parametrize("cls", PATHOLOGY_WORKLOAD_CLASSES,
                             ids=lambda cls: cls.spec.name)
    def test_waits_carry_planted_signatures(self, cls):
        stream = run_pathology(cls, intensity=0.7, repeats=4)
        planted_waits = [
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if any(sig in event.stack for sig in cls.planted_signatures)
        ]
        assert planted_waits, f"{cls.spec.name} planted no labeled waits"
        resources = {event.resource for event in planted_waits}
        assert resources & cls.planted_resources

    @pytest.mark.parametrize("cls", PATHOLOGY_WORKLOAD_CLASSES,
                             ids=lambda cls: cls.spec.name)
    def test_intensity_scales_severity(self, cls):
        def median_duration(intensity):
            durations = []
            for seed in (3, 5):
                stream = run_pathology(
                    cls, intensity=intensity, repeats=4, seed=seed
                )
                durations.extend(
                    instance.duration
                    for instance in stream.instances
                    if instance.scenario == cls.spec.name
                )
            return statistics.median(durations)

        assert median_duration(0.9) > median_duration(0.1)


class TestPathologySpecifics:
    def test_convoy_lock_is_the_dominant_wait(self):
        stream = run_pathology(LockConvoy, intensity=0.8)
        waits = stream.events_of_kind(EventKind.WAIT)
        convoy_cost = sum(
            event.cost for event in waits
            if event.resource == "lock:ConvoyHot"
        )
        assert convoy_cost > 0
        assert convoy_cost >= 0.5 * sum(event.cost for event in waits)

    def test_inversion_scenario_thread_blocks_on_config_lock(self):
        stream = run_pathology(PriorityInversion, intensity=0.8)
        instance_tids = {
            instance.tid
            for instance in stream.instances
            if instance.scenario == "PriorityInversion"
        }
        blocked = [
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if event.tid in instance_tids
            and event.resource == "lock:InversionConfig"
        ]
        assert blocked

    def test_cycle_never_truly_deadlocks_but_contends_both_locks(self):
        # A genuine deadlock would raise DeadlockError from the
        # unbounded run inside run_pathology; reaching here proves the
        # trylock-with-backoff discipline holds even at full intensity.
        # Beta is where the cycle serializes (the reverse path camps on
        # it); alpha waits need a tighter race, so sample a few seeds.
        contended = set()
        for seed in range(4):
            stream = run_pathology(
                DeadlockCycle, intensity=1.0, repeats=5, seed=seed
            )
            contended |= {
                event.resource
                for event in stream.events_of_kind(EventKind.WAIT)
                if event.resource in ("lock:CycleAlpha", "lock:CycleBeta")
            }
        assert contended == {"lock:CycleAlpha", "lock:CycleBeta"}

    def test_storm_collection_wait_tracks_the_straggler_tail(self):
        stream = run_pathology(WakeupStorm, intensity=0.8)
        collect_waits = [
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if "storm.sys!CollectCompletions" in event.stack
        ]
        instances = [
            instance
            for instance in stream.instances
            if instance.scenario == "WakeupStorm"
        ]
        # One collection wait per round, and it dominates the round.
        assert len(collect_waits) == len(instances)
        total_collect = sum(event.cost for event in collect_waits)
        total_duration = sum(
            instance.duration for instance in instances
        )
        assert total_collect >= 0.5 * total_duration
