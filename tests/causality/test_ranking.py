"""Tests for pattern ranking and coverage."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.causality.mining import ContrastPattern
from repro.causality.ranking import coverage_curve, coverage_of_top, rank_patterns
from repro.causality.sst import SignatureSetTuple


def pattern(cost, count, tag):
    return ContrastPattern(
        sst=SignatureSetTuple(frozenset({f"{tag}!f"}), frozenset(), frozenset()),
        cost=cost,
        count=count,
        max_single=cost,
        matched_meta_patterns=1,
    )


class TestRanking:
    def test_sorted_by_impact(self):
        patterns = [pattern(100, 10, "low"), pattern(1_000, 2, "high")]
        ranked = rank_patterns(patterns)
        assert ranked[0].impact > ranked[1].impact

    def test_deterministic_tie_break(self):
        a = pattern(100, 1, "a.sys")
        b = pattern(100, 1, "b.sys")
        assert rank_patterns([b, a]) == rank_patterns([a, b])

    @given(st.lists(st.tuples(st.integers(1, 10**6), st.integers(1, 100)), max_size=20))
    def test_rank_is_non_increasing(self, raw):
        patterns = [pattern(c, n, f"t{i}.sys") for i, (c, n) in enumerate(raw)]
        ranked = rank_patterns(patterns)
        impacts = [p.impact for p in ranked]
        assert impacts == sorted(impacts, reverse=True)


class TestCoverage:
    def test_empty(self):
        assert coverage_of_top([], 0.1) == 0.0

    def test_full_fraction_covers_everything(self):
        ranked = rank_patterns([pattern(100, 1, "a"), pattern(50, 1, "b")])
        assert coverage_of_top(ranked, 1.0) == 1.0

    def test_top_fraction(self):
        ranked = rank_patterns(
            [pattern(900, 1, "a"), pattern(50, 1, "b"), pattern(50, 1, "c")]
        )
        assert coverage_of_top(ranked, 1 / 3) == 0.9

    def test_at_least_one_pattern_selected(self):
        ranked = rank_patterns([pattern(100, 1, "a"), pattern(100, 1, "b")])
        assert coverage_of_top(ranked, 0.01) == 0.5

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            coverage_of_top([], 1.5)

    def test_curve(self):
        ranked = rank_patterns([pattern(100 * i, 1, f"t{i}") for i in range(1, 11)])
        curve = coverage_curve(ranked)
        assert len(curve) == 3
        assert curve == sorted(curve)  # monotone in the fraction

    @given(
        st.lists(st.integers(1, 10**6), min_size=1, max_size=30),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
    )
    def test_coverage_monotone(self, costs, f1, f2):
        ranked = rank_patterns(
            [pattern(cost, 1, f"t{i}") for i, cost in enumerate(costs)]
        )
        low, high = min(f1, f2), max(f1, f2)
        assert coverage_of_top(ranked, low) <= coverage_of_top(ranked, high) + 1e-12
